// Command benchjson converts `go test -bench` output on stdin into the
// JSON benchmark artifact CI archives (BENCH_PR6.json). It understands
// the two engine-matrix suites:
//
//	BenchmarkEngines/<engine>/<circuit>-P     ... ns/op ... ns/fault-pattern
//	BenchmarkLotEngines/<engine>/<circuit>-P  ... ns/op ... chips/s
//
// and emits one row per benchmark line:
//
//	{
//	  "schema": "bench/v1",
//	  "rows": [
//	    {
//	      "suite": "engines",             // "engines" | "lot-engines"
//	      "engine": "pf256",              // registry name, e.g. serial, ppsfp, pf, pf256
//	      "circuit": "mul8",              // workload name
//	      "iterations": 30,               // benchmark iteration count
//	      "ns_per_op": 1885999,           // one op = one full run over the workload
//	      "ns_per_fault_pattern": 5.54,   // engines suite only
//	      "fault_patterns_per_sec": 1.8e8,// 1e9 / ns_per_fault_pattern
//	      "chips_per_sec": 1342801        // lot-engines suite only
//	    }, ...
//	  ]
//	}
//
// Rows keep input order (the registries' stable engine order). Usage:
//
//	go test -run '^$' -bench 'BenchmarkEngines|BenchmarkLotEngines' . | benchjson > BENCH_PR6.json
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Row is one engine×circuit measurement. Zero-valued metrics are
// omitted: engines rows have no chips/s, lot-engines rows have no
// fault-pattern metrics.
type Row struct {
	Suite               string  `json:"suite"`
	Engine              string  `json:"engine"`
	Circuit             string  `json:"circuit"`
	Iterations          int     `json:"iterations"`
	NsPerOp             float64 `json:"ns_per_op"`
	NsPerFaultPattern   float64 `json:"ns_per_fault_pattern,omitempty"`
	FaultPatternsPerSec float64 `json:"fault_patterns_per_sec,omitempty"`
	ChipsPerSec         float64 `json:"chips_per_sec,omitempty"`
}

// Report is the artifact's top level; Schema names the layout so later
// PRs can evolve it without breaking downstream readers.
type Report struct {
	Schema string `json:"schema"`
	Rows   []Row  `json:"rows"`
}

// suites maps the benchmark function prefix to the suite tag.
var suites = map[string]string{
	"BenchmarkEngines":    "engines",
	"BenchmarkLotEngines": "lot-engines",
}

func main() {
	report := Report{Schema: "bench/v1"}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if row, ok := parseLine(sc.Text()); ok {
			report.Rows = append(report.Rows, row)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(report.Rows) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine extracts a Row from one `go test -bench` result line, or
// reports false for headers, headlines, and unrelated benchmarks.
func parseLine(line string) (Row, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Row{}, false
	}
	// Name: BenchmarkEngines/<engine>/<circuit>-P. Engines may contain
	// '-' (ppsfp-full, chip-parallel), so only the final -P is trimmed.
	parts := strings.Split(fields[0], "/")
	if len(parts) != 3 {
		return Row{}, false
	}
	suite, ok := suites[parts[0]]
	if !ok {
		return Row{}, false
	}
	circuit := parts[2]
	if i := strings.LastIndex(circuit, "-"); i > 0 {
		circuit = circuit[:i]
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Row{}, false
	}
	row := Row{Suite: suite, Engine: parts[1], Circuit: circuit, Iterations: iters}
	// Remaining fields are (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Row{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			row.NsPerOp = v
		case "ns/fault-pattern":
			row.NsPerFaultPattern = v
			if v > 0 {
				row.FaultPatternsPerSec = 1e9 / v
			}
		case "chips/s":
			row.ChipsPerSec = v
		}
	}
	return row, true
}
