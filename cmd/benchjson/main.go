// Command benchjson converts `go test -bench` output on stdin into the
// JSON benchmark artifact CI archives (BENCH_PR9.json) and compares two
// artifacts. It understands the two engine-matrix suites:
//
//	BenchmarkEngines/<engine>/<circuit>-P     ... ns/op ... ns/fault-pattern
//	BenchmarkLotEngines/<engine>/<circuit>-P  ... ns/op ... chips/s
//
// and emits one row per benchmark line:
//
//	{
//	  "schema": "bench/v1",
//	  "rows": [
//	    {
//	      "suite": "engines",             // "engines" | "lot-engines"
//	      "engine": "pf256",              // registry name, e.g. serial, ppsfp, pf, pf256
//	      "circuit": "mul8",              // workload name
//	      "iterations": 30,               // benchmark iteration count
//	      "ns_per_op": 1885999,           // one op = one full run over the workload
//	      "ns_per_fault_pattern": 5.54,   // engines suite only
//	      "fault_patterns_per_sec": 1.8e8,// 1e9 / ns_per_fault_pattern
//	      "chips_per_sec": 1342801,       // lot-engines suite only
//	      "gates": 4064,                  // circuit scale at measurement
//	      "faults": 9216,                 // time, when the suite reports
//	      "patterns": 256                 // it (metadata, never compared)
//	    }, ...
//	  ]
//	}
//
// Rows keep input order (the registries' stable engine order). Usage:
//
//	go test -run '^$' -bench 'BenchmarkEngines|BenchmarkLotEngines' . | benchjson > BENCH_PR9.json
//	go test ... -bench ... | benchjson -out BENCH_PR9.json -baseline BENCH_PR6.json
//	benchjson -in BENCH_PR9.json -baseline BENCH_PR6.json -fail-over 25
//
// With -baseline, a per-row comparison table (throughput delta % per
// engine×circuit) is printed; -fail-over N exits non-zero when any
// `engines`-suite row's fault_patterns_per_sec regresses by more than
// N% against the baseline (other suites and smaller slips only warn —
// CI runners are noisy). -in reads a previously written artifact
// instead of parsing benchmark output on stdin.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/tablefmt"
)

// Row is one engine×circuit measurement. Zero-valued metrics are
// omitted: engines rows have no chips/s, lot-engines rows have no
// fault-pattern metrics.
type Row struct {
	Suite               string  `json:"suite"`
	Engine              string  `json:"engine"`
	Circuit             string  `json:"circuit"`
	Iterations          int     `json:"iterations"`
	NsPerOp             float64 `json:"ns_per_op"`
	NsPerFaultPattern   float64 `json:"ns_per_fault_pattern,omitempty"`
	FaultPatternsPerSec float64 `json:"fault_patterns_per_sec,omitempty"`
	ChipsPerSec         float64 `json:"chips_per_sec,omitempty"`
	// Circuit scale at measurement time: workload generators evolve
	// across PRs, and a throughput delta on a circuit that doubled in
	// size is not a regression. Zero when the suite predates the
	// metrics.
	Gates    int `json:"gates,omitempty"`
	Faults   int `json:"faults,omitempty"`
	Patterns int `json:"patterns,omitempty"`
}

// Report is the artifact's top level; Schema names the layout so later
// PRs can evolve it without breaking downstream readers.
type Report struct {
	Schema string `json:"schema"`
	Rows   []Row  `json:"rows"`
}

// suites maps the benchmark function prefix to the suite tag.
var suites = map[string]string{
	"BenchmarkEngines":    "engines",
	"BenchmarkLotEngines": "lot-engines",
}

func main() {
	var (
		inPath       = flag.String("in", "", "read a bench/v1 artifact instead of parsing benchmark output on stdin")
		outPath      = flag.String("out", "", "write the artifact to this file instead of stdout")
		baselinePath = flag.String("baseline", "", "bench/v1 artifact to compare against (prints a delta table)")
		failOver     = flag.Float64("fail-over", 0, "exit non-zero when an engines-suite fault_patterns_per_sec regression exceeds this percentage (0 = never fail)")
	)
	flag.Parse()
	report, err := currentReport(*inPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	jsonOnStdout := false
	switch {
	case *outPath != "":
		if err := writeReport(*outPath, report); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
	case *inPath == "":
		// Classic pipe mode: the artifact goes to stdout.
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		jsonOnStdout = true
	}
	if *baselinePath == "" {
		return
	}
	baseline, err := readReport(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	// The table shares stdout with nothing unless the artifact went
	// there; then it moves to stderr so `> BENCH.json` stays clean.
	dst := io.Writer(os.Stdout)
	if jsonOnStdout {
		dst = os.Stderr
	}
	worst, err := compare(dst, baseline, report, *failOver)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *failOver > 0 && worst > *failOver {
		fmt.Fprintf(os.Stderr, "benchjson: engines-suite throughput regressed %.1f%% (> %.0f%% budget)\n", worst, *failOver)
		os.Exit(1)
	}
}

// currentReport builds the report under test: from a previously written
// artifact when inPath is set, else by parsing benchmark output on
// stdin.
func currentReport(inPath string) (Report, error) {
	if inPath != "" {
		return readReport(inPath)
	}
	report := Report{Schema: "bench/v1"}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		if row, ok := parseLine(sc.Text()); ok {
			report.Rows = append(report.Rows, row)
		}
	}
	if err := sc.Err(); err != nil {
		return Report{}, err
	}
	if len(report.Rows) == 0 {
		return Report{}, fmt.Errorf("no benchmark lines on stdin")
	}
	return report, nil
}

// readReport loads and validates a bench/v1 artifact.
func readReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("%s: %w", path, err)
	}
	if r.Schema != "bench/v1" {
		return Report{}, fmt.Errorf("%s: schema %q, want bench/v1", path, r.Schema)
	}
	return r, nil
}

// writeReport writes the artifact to a file.
func writeReport(path string, r Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// throughput returns the suite's headline rate metric: the comparison
// always runs on throughput (higher = better), never on raw ns/op,
// whose per-op workload can legitimately change between PRs.
func throughput(r Row) (float64, string) {
	if r.Suite == "lot-engines" {
		return r.ChipsPerSec, "chips/s"
	}
	return r.FaultPatternsPerSec, "fault-patterns/s"
}

// compare prints the per-row delta table and returns the worst
// engines-suite throughput regression in percent (0 when nothing
// regressed). Rows present on only one side are listed but never fail
// the budget — engines come and go across PRs.
func compare(w io.Writer, baseline, current Report, budget float64) (float64, error) {
	type key struct{ suite, engine, circuit string }
	base := make(map[key]Row, len(baseline.Rows))
	for _, r := range baseline.Rows {
		base[key{r.Suite, r.Engine, r.Circuit}] = r
	}
	tb := tablefmt.New("suite", "engine", "circuit", "metric", "baseline", "current", "delta")
	worst := 0.0
	seen := make(map[key]bool, len(current.Rows))
	for _, r := range current.Rows {
		k := key{r.Suite, r.Engine, r.Circuit}
		seen[k] = true
		cur, unit := throughput(r)
		b, ok := base[k]
		if !ok {
			tb.AddRowf(r.Suite, r.Engine, r.Circuit, unit, "-", fmt.Sprintf("%.4g", cur), "new")
			continue
		}
		was, _ := throughput(b)
		if was <= 0 || cur <= 0 {
			tb.AddRowf(r.Suite, r.Engine, r.Circuit, unit, fmt.Sprintf("%.4g", was), fmt.Sprintf("%.4g", cur), "n/a")
			continue
		}
		delta := (cur - was) / was * 100
		mark := ""
		if r.Suite == "engines" && budget > 0 && -delta > budget {
			mark = "  << over budget"
			if -delta > worst {
				worst = -delta
			}
		}
		tb.AddRowf(r.Suite, r.Engine, r.Circuit, unit,
			fmt.Sprintf("%.4g", was), fmt.Sprintf("%.4g", cur), fmt.Sprintf("%+.1f%%%s", delta, mark))
	}
	for _, r := range baseline.Rows {
		k := key{r.Suite, r.Engine, r.Circuit}
		if !seen[k] {
			was, unit := throughput(r)
			tb.AddRowf(r.Suite, r.Engine, r.Circuit, unit, fmt.Sprintf("%.4g", was), "-", "gone")
		}
	}
	return worst, tb.Render(w)
}

// parseLine extracts a Row from one `go test -bench` result line, or
// reports false for headers, headlines, and unrelated benchmarks.
func parseLine(line string) (Row, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Row{}, false
	}
	// Name: BenchmarkEngines/<engine>/<circuit>-P. Engines may contain
	// '-' (ppsfp-full, chip-parallel), so only the final -P is trimmed.
	parts := strings.Split(fields[0], "/")
	if len(parts) != 3 {
		return Row{}, false
	}
	suite, ok := suites[parts[0]]
	if !ok {
		return Row{}, false
	}
	circuit := parts[2]
	if i := strings.LastIndex(circuit, "-"); i > 0 {
		circuit = circuit[:i]
	}
	iters, err := strconv.Atoi(fields[1])
	if err != nil {
		return Row{}, false
	}
	row := Row{Suite: suite, Engine: parts[1], Circuit: circuit, Iterations: iters}
	// Remaining fields are (value, unit) pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Row{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			row.NsPerOp = v
		case "ns/fault-pattern":
			row.NsPerFaultPattern = v
			if v > 0 {
				row.FaultPatternsPerSec = 1e9 / v
			}
		case "chips/s":
			row.ChipsPerSec = v
		case "gates":
			row.Gates = int(v)
		case "faults":
			row.Faults = int(v)
		case "patterns":
			row.Patterns = int(v)
		}
	}
	return row, true
}
