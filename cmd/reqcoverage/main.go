// Command reqcoverage solves the paper's central question: what fault
// coverage must tests reach for a target field reject rate (Figs. 2-4
// as a calculator), and how does that compare to the Wadsack baseline.
//
//	reqcoverage -yield 0.07 -n0 8 -reject 0.001
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/quality"
)

func main() {
	y := flag.Float64("yield", 0.07, "chip yield in (0,1)")
	n0 := flag.Float64("n0", 8, "mean faults on a defective chip (>= 1)")
	r := flag.Float64("reject", 0.001, "target field reject rate in (0,1)")
	flag.Parse()

	m, err := quality.NewModel(*y, *n0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reqcoverage:", err)
		os.Exit(1)
	}
	paper, wadsack, savings, err := quality.CoverageSavings(m, *r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reqcoverage:", err)
		os.Exit(1)
	}
	fmt.Printf("target reject rate: %.4g (%.1f DPM)\n", *r, quality.DefectLevelDPM(*r))
	fmt.Printf("required coverage (this model):    %.4f\n", paper)
	fmt.Printf("required coverage (Wadsack [5]):   %.4f\n", wadsack)
	fmt.Printf("coverage saved by fault clustering: %.4f\n", savings)
}
