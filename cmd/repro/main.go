// Command repro regenerates the paper's figures and tables.
//
// Usage:
//
//	repro -artifact all          # everything
//	repro -artifact fig1         # Fig. 1 reject-rate curves
//	repro -artifact fig2|fig3|fig4
//	repro -artifact fig6         # q0 approximations
//	repro -artifact table1       # synthetic lot experiment + Fig. 5
//	repro -artifact wadsack      # §7 comparison
//	repro -artifact shrink       # §8 fine-line study
//	repro -artifact yieldn0      # future-work yield↔n0 relation
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/circuits"
	"repro/internal/experiment"
	"repro/internal/netlist"
)

func main() {
	artifact := flag.String("artifact", "all", "which artifact to regenerate (all, fig1, fig2, fig3, fig4, fig5, fig6, table1, wadsack, shrink, yieldn0)")
	chips := flag.Int("chips", 277, "lot size for the table1 experiment")
	seed := flag.Int64("seed", 1981, "random seed for the table1 experiment")
	physical := flag.Bool("physical", false, "drive the table1 lot through the physical-defect layer")
	circuit := flag.String("circuit", "", "workload spec overriding each artifact's default circuit (see -list-circuits)")
	listCircuits := flag.Bool("list-circuits", false, "print the workload spec grammar and exit")
	flag.Parse()

	if *listCircuits {
		fmt.Print(circuits.List())
		return
	}
	if err := run(*artifact, *chips, *seed, *physical, *circuit); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

func run(artifact string, chips int, seed int64, physical bool, circuitSpec string) error {
	// pick resolves each circuit-driven artifact's workload: the
	// artifact's registry default, unless -circuit overrides it.
	pick := func(defaultSpec string) (*netlist.Circuit, error) {
		if circuitSpec != "" {
			return circuits.Resolve(circuitSpec)
		}
		return circuits.Resolve(defaultSpec)
	}
	want := func(name string) bool { return artifact == "all" || artifact == name }
	ran := false
	if want("fig1") {
		res, err := experiment.Fig1()
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		ran = true
	}
	for _, fig := range []struct {
		name string
		r    float64
	}{{"fig2", 0.01}, {"fig3", 0.005}, {"fig4", 0.001}} {
		if want(fig.name) {
			res, err := experiment.RequiredCoverageFigure(fig.r)
			if err != nil {
				return err
			}
			fmt.Println(res.Render())
			ran = true
		}
	}
	if want("table1") || want("fig5") {
		cfg := experiment.DefaultTable1Config()
		cfg.Chips = chips
		cfg.Seed = seed
		cfg.Physical = physical
		c, err := pick(experiment.DefaultCircuitSpec)
		if err != nil {
			return err
		}
		cfg.Circuit = c
		res, err := experiment.RunTable1(cfg)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		ran = true
	}
	if want("fig6") {
		fmt.Println(experiment.Fig6().Render())
		ran = true
	}
	if want("wadsack") {
		res, err := experiment.WadsackComparison(0.07, 8, []float64{0.01, 0.005, 0.001})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		ran = true
	}
	if want("shrink") {
		res, err := experiment.ShrinkStudy(2.659, 0.5, 8, 0.001, []float64{1, 0.9, 0.8, 0.7, 0.6, 0.5})
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		ran = true
	}
	if want("validate") {
		c, err := pick("mul4")
		if err != nil {
			return err
		}
		res, err := experiment.ValidateRejectRate(c, 0.3, 6, 30000,
			[]float64{0.5, 0.6, 0.7, 0.8, 0.9}, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		ran = true
	}
	if want("collapse") {
		c, err := pick("mul6")
		if err != nil {
			return err
		}
		res, err := experiment.CollapseStudy(c, 256, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		ran = true
	}
	if want("estbias") {
		points := []struct{ Y, N0 float64 }{
			{0.07, 8.8}, {0.2, 8.8}, {0.5, 8.8}, {0.8, 8.8},
		}
		res, err := experiment.EstimatorBias(points, chips, 60, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		ran = true
	}
	if want("yieldn0") {
		c, err := pick("mul4")
		if err != nil {
			return err
		}
		res, err := experiment.YieldN0Study(c,
			[]float64{0.3, 0.6, 1.0, 1.5, 2.2, 3.0}, 3.0, 4000, seed)
		if err != nil {
			return err
		}
		fmt.Println(res.Render())
		ran = true
	}
	if !ran {
		return fmt.Errorf("unknown artifact %q", artifact)
	}
	return nil
}
