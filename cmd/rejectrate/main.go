// Command rejectrate computes the field reject rate r(f) (Eq. 8) for a
// given yield and n0, at one coverage or as a swept table.
//
//	rejectrate -yield 0.07 -n0 8.8 -coverage 0.95
//	rejectrate -yield 0.07 -n0 8.8 -sweep 11
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/tablefmt"
	"repro/quality"
)

func main() {
	y := flag.Float64("yield", 0.07, "chip yield in (0,1)")
	n0 := flag.Float64("n0", 8.8, "mean faults on a defective chip (>= 1)")
	f := flag.Float64("coverage", -1, "fault coverage in [0,1]; -1 sweeps instead")
	steps := flag.Int("sweep", 11, "number of sweep points when no coverage is given")
	flag.Parse()

	m, err := quality.NewModel(*y, *n0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "rejectrate:", err)
		os.Exit(1)
	}
	if *f >= 0 {
		if *f > 1 {
			fmt.Fprintln(os.Stderr, "rejectrate: coverage must be in [0,1]")
			os.Exit(1)
		}
		r := m.RejectRate(*f)
		fmt.Printf("yield=%.4g n0=%.4g coverage=%.4g => reject rate %.6g (%.1f DPM)\n",
			*y, *n0, *f, r, quality.DefectLevelDPM(r))
		return
	}
	if *steps < 2 {
		fmt.Fprintln(os.Stderr, "rejectrate: sweep needs >= 2 points")
		os.Exit(1)
	}
	tb := tablefmt.New("coverage", "reject rate", "DPM")
	for i := 0; i < *steps; i++ {
		fc := float64(i) / float64(*steps-1)
		r := m.RejectRate(fc)
		tb.AddRow(fc, r, quality.DefectLevelDPM(r))
	}
	fmt.Print(tb.String())
}
