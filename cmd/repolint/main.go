// Command repolint runs the repo-contract analyzers (determinism,
// registry, invalidation, hotpath, sentinel-errors) over the module.
// It exits 0 when clean, 1 on findings, 2 on usage or load errors.
//
// Built entirely on the standard library (go/parser, go/types); see
// internal/lint for the analyzer registry and annotation comments.
package main

import (
	"os"

	"repro/internal/lint"
)

func main() {
	os.Exit(lint.Main(os.Args[1:], os.Stdout, os.Stderr))
}
