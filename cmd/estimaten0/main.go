// Command estimaten0 characterizes the model parameter n0 from lot
// fallout data (§5 of the paper). Input is CSV lines of
// "coverage,fraction_failed" on stdin or from -input; with no input it
// analyzes the paper's own Table 1.
//
//	estimaten0 -yield 0.07 < fallout.csv
//	estimaten0                       # paper's Table 1
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/estimate"
	"repro/quality"
)

func main() {
	y := flag.Float64("yield", 0.07, "known chip yield; 0 fits yield jointly")
	input := flag.String("input", "", "CSV file of coverage,fraction_failed (default: stdin if piped, else paper Table 1)")
	maxF := flag.Float64("slope-maxf", 0.1, "max coverage used by the slope estimator")
	flag.Parse()

	curve, label, err := loadCurve(*input)
	if err != nil {
		fmt.Fprintln(os.Stderr, "estimaten0:", err)
		os.Exit(1)
	}
	fmt.Printf("data: %s (%d points)\n", label, len(curve))

	if *y > 0 {
		fit, err := quality.FitN0(curve, *y)
		if err != nil {
			fmt.Fprintln(os.Stderr, "estimaten0:", err)
			os.Exit(1)
		}
		fmt.Printf("curve-fit n0: %.3f (SSE %.5f)\n", fit.N0, fit.SSE)
		slope, err := quality.SlopeN0(curve, *y, *maxF)
		if err == nil {
			fmt.Printf("slope n0:     %.3f (points with f <= %.3g)\n", slope.N0, *maxF)
		}
		m, err := quality.NewModel(*y, fit.N0)
		if err == nil {
			for _, r := range []float64{0.01, 0.005, 0.001} {
				f, err := m.RequiredCoverage(r)
				if err == nil {
					fmt.Printf("required coverage for r = %-6g: %.4f\n", r, f)
				}
			}
		}
		return
	}
	n0, yield, err := quality.FitN0AndYield(curve)
	if err != nil {
		fmt.Fprintln(os.Stderr, "estimaten0:", err)
		os.Exit(1)
	}
	fmt.Printf("joint fit: n0 = %.3f, yield = %.3f\n", n0, yield)
}

// loadCurve reads the fallout curve from a file, stdin, or the
// embedded paper data.
func loadCurve(path string) (quality.Curve, string, error) {
	var r io.Reader
	label := ""
	switch {
	case path != "":
		f, err := os.Open(path)
		if err != nil {
			return nil, "", err
		}
		defer f.Close()
		r = f
		label = path
	default:
		if stat, err := os.Stdin.Stat(); err == nil && stat.Mode()&os.ModeCharDevice == 0 {
			r = os.Stdin
			label = "stdin"
		} else {
			return quality.PaperTable1Curve(), "paper Table 1", nil
		}
	}
	curve, err := estimate.ParseCSV(r)
	if err != nil {
		return nil, "", err
	}
	return curve, label, nil
}
