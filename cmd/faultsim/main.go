// Command faultsim grades a test-pattern set against a circuit: it
// builds the collapsed single-stuck-at fault list, runs parallel-
// pattern fault simulation, and prints the coverage ramp — the
// fault-simulator product §5 of the paper starts from.
//
//	faultsim -bench c17.bench -patterns 64 -seed 7
//	faultsim -circuit mul8 -patterns 256 -engine deductive
//	faultsim -circuit cmp16 -patterns 512 -engine concurrent -workers 8
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/atpg"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/netlist"
	"repro/internal/tablefmt"
)

func main() {
	benchPath := flag.String("bench", "", "circuit in .bench format (overrides -circuit)")
	circuit := flag.String("circuit", "c17", "built-in circuit: c17, rca<N>, mul<N>, parity<N>, dec<N>, mux<N>, cmp<N>")
	npat := flag.Int("patterns", 64, "number of random patterns")
	seed := flag.Int64("seed", 1, "pattern seed")
	engine := flag.String("engine", "ppsfp", "engine: serial, ppsfp, deductive, pf, concurrent")
	workers := flag.Int("workers", 0, "goroutines for -engine concurrent (0 = GOMAXPROCS)")
	full := flag.Bool("full", false, "disable cone restriction (full-circuit reference path)")
	lfsr := flag.Bool("lfsr", false, "use an LFSR instead of uniform random patterns")
	flag.Parse()

	opt := faultsim.Options{Workers: *workers, FullCircuit: *full}
	if err := run(*benchPath, *circuit, *npat, *seed, *engine, opt, *lfsr); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

func run(benchPath, circuit string, npat int, seed int64, engineName string, opt faultsim.Options, lfsr bool) error {
	c, err := loadCircuit(benchPath, circuit)
	if err != nil {
		return err
	}
	stats, err := c.ComputeStats()
	if err != nil {
		return err
	}
	fmt.Printf("circuit %s: %s\n", c.Name, stats)

	eng, err := faultsim.ParseEngine(engineName)
	if err != nil {
		return err
	}
	// Reject flag/engine combinations that would be silently ignored:
	// wrong timings attributed to the wrong configuration are worse
	// than an error.
	if opt.FullCircuit && eng != faultsim.PPSFP && eng != faultsim.Concurrent {
		return fmt.Errorf("-full only applies to the ppsfp and concurrent engines (got %v)", eng)
	}
	if opt.Workers != 0 && eng != faultsim.Concurrent {
		return fmt.Errorf("-workers only applies to the concurrent engine (got %v)", eng)
	}

	var src atpg.Source
	if lfsr {
		src, err = atpg.NewLFSRSource(len(c.Inputs), uint32(seed)|1)
	} else {
		src, err = atpg.NewRandomSource(len(c.Inputs), seed)
	}
	if err != nil {
		return err
	}
	patterns := atpg.Take(src, npat)

	u := fault.BuildUniverse(c)
	reps := fault.Reps(u.Collapsed)
	fmt.Printf("faults: %d total, %d collapsed, %d after dominance\n",
		len(u.All), len(u.Collapsed), len(u.Checkable))

	res, err := faultsim.RunOpts(c, reps, patterns, eng, opt)
	if err != nil {
		return err
	}
	curve := faultsim.CurveFromResult(res)
	tb := tablefmt.New("pattern", "detected", "coverage")
	step := len(curve) / 16
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(curve); i += step {
		tb.AddRow(curve[i].Pattern+1, curve[i].Detected, fmt.Sprintf("%.4f", curve[i].Coverage))
	}
	last := curve[len(curve)-1]
	tb.AddRow(last.Pattern+1, last.Detected, fmt.Sprintf("%.4f", last.Coverage))
	fmt.Print(tb.String())
	fmt.Printf("final coverage (%s engine): %.4f, undetected %d\n",
		eng, res.Coverage(), len(faultsim.Undetected(res)))
	return nil
}

// loadCircuit resolves the circuit flag.
func loadCircuit(benchPath, name string) (*netlist.Circuit, error) {
	if benchPath != "" {
		f, err := os.Open(benchPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return netlist.ParseBench(benchPath, f)
	}
	return builtinCircuit(name)
}

// builtinCircuit parses names like mul8, rca16, parity32, dec4, mux3,
// cmp8, c17, rand<seed>.
func builtinCircuit(name string) (*netlist.Circuit, error) {
	if name == "c17" {
		return netlist.C17(), nil
	}
	var n int
	switch {
	case scan(name, "rca%d", &n):
		return netlist.RippleAdder(n)
	case scan(name, "mul%d", &n):
		return netlist.ArrayMultiplier(n)
	case scan(name, "parity%d", &n):
		return netlist.ParityTree(n)
	case scan(name, "dec%d", &n):
		return netlist.Decoder(n)
	case scan(name, "mux%d", &n):
		return netlist.MuxTree(n)
	case scan(name, "cmp%d", &n):
		return netlist.Comparator(n)
	case scan(name, "rand%d", &n):
		return netlist.RandomCircuit(name, 16, 400, 12, int64(n))
	default:
		return nil, fmt.Errorf("unknown circuit %q", name)
	}
}

func scan(s, format string, n *int) bool {
	matched, err := fmt.Sscanf(s, format, n)
	return err == nil && matched == 1
}
