// Command faultsim grades a test-pattern set against a circuit: it
// builds the collapsed single-stuck-at fault list, runs parallel-
// pattern fault simulation, and prints the coverage ramp — the
// fault-simulator product §5 of the paper starts from.
//
//	faultsim -bench c17.bench -patterns 64 -seed 7
//	faultsim -circuit mul8 -patterns 256 -engine deductive
//	faultsim -circuit cmp16 -patterns 512 -engine concurrent -workers 8
//	faultsim -list-circuits
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/atpg"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/tablefmt"
)

func main() {
	benchPath := flag.String("bench", "", "circuit in .bench format (shorthand for -circuit bench:<path>)")
	circuit := flag.String("circuit", "c17", "workload spec (see -list-circuits)")
	listCircuits := flag.Bool("list-circuits", false, "print the workload spec grammar and exit")
	npat := flag.Int("patterns", 64, "number of random patterns")
	seed := flag.Int64("seed", 1, "pattern seed")
	engine := flag.String("engine", "ppsfp", "engine: serial, ppsfp, deductive, pf, concurrent, pf256")
	workers := flag.Int("workers", 0, "goroutines for -engine concurrent (0 = GOMAXPROCS)")
	full := flag.Bool("full", false, "disable cone restriction (full-circuit reference path)")
	lfsr := flag.Bool("lfsr", false, "use an LFSR instead of uniform random patterns")
	flag.Parse()

	if *listCircuits {
		fmt.Print(circuits.List())
		return
	}
	spec := *circuit
	if *benchPath != "" {
		spec = "bench:" + *benchPath
	}
	opt := faultsim.Options{Workers: *workers, FullCircuit: *full}
	if err := run(spec, *npat, *seed, *engine, opt, *lfsr); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

func run(spec string, npat int, seed int64, engineName string, opt faultsim.Options, lfsr bool) error {
	c, err := circuits.Resolve(spec)
	if err != nil {
		return err
	}
	stats, err := c.ComputeStats()
	if err != nil {
		return err
	}
	fmt.Printf("circuit %s: %s\n", c.Name, stats)

	eng, err := faultsim.ParseEngine(engineName)
	if err != nil {
		return err
	}
	// Reject flag/engine combinations that would be silently ignored:
	// wrong timings attributed to the wrong configuration are worse
	// than an error.
	if opt.FullCircuit && eng != faultsim.PPSFP && eng != faultsim.Concurrent {
		return fmt.Errorf("-full only applies to the ppsfp and concurrent engines (got %v)", eng)
	}
	if opt.Workers != 0 && eng != faultsim.Concurrent {
		return fmt.Errorf("-workers only applies to the concurrent engine (got %v)", eng)
	}

	var src atpg.Source
	if lfsr {
		src, err = atpg.NewLFSRSource(len(c.Inputs), uint32(seed)|1)
	} else {
		src, err = atpg.NewRandomSource(len(c.Inputs), seed)
	}
	if err != nil {
		return err
	}
	patterns := atpg.Take(src, npat)

	u := fault.BuildUniverse(c)
	reps := fault.Reps(u.Collapsed)
	fmt.Printf("faults: %d total, %d collapsed, %d after dominance\n",
		len(u.All), len(u.Collapsed), len(u.Checkable))

	res, err := faultsim.RunOpts(c, reps, patterns, eng, opt)
	if err != nil {
		return err
	}
	curve := faultsim.CurveFromResult(res)
	tb := tablefmt.New("pattern", "detected", "coverage")
	step := len(curve) / 16
	if step < 1 {
		step = 1
	}
	for i := 0; i < len(curve); i += step {
		tb.AddRow(curve[i].Pattern+1, curve[i].Detected, fmt.Sprintf("%.4f", curve[i].Coverage))
	}
	last := curve[len(curve)-1]
	tb.AddRow(last.Pattern+1, last.Detected, fmt.Sprintf("%.4f", last.Coverage))
	fmt.Print(tb.String())
	fmt.Printf("final coverage (%s engine): %.4f, undetected %d\n",
		eng, res.Coverage(), len(faultsim.Undetected(res)))
	return nil
}
