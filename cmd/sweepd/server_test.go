package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/sweep"
)

// testBody is the wire config every handler test submits: the same
// two-circuit, 2-cell x 3-replicate campaign the sweep durability
// tests kill and resume.
func testBody() []byte {
	return []byte(`{
		"circuits": ["mul4", "cmp8"],
		"yields": [0.25],
		"n0s": [3],
		"lot_sizes": [60],
		"coverages": [0.3, 0.6],
		"replicates": 3,
		"workers": 2,
		"random_patterns": 32,
		"seed": 19
	}`)
}

func testConfig() sweep.Config {
	return sweep.Config{
		Circuits:       []string{"mul4", "cmp8"},
		Yields:         []float64{0.25},
		N0s:            []float64{3},
		LotSizes:       []int{60},
		Coverages:      []float64{0.3, 0.6},
		Replicates:     3,
		Workers:        2,
		RandomPatterns: 32,
		Seed:           19,
	}
}

// goldenCSV runs the campaign in process — the bytes every daemon path
// must reproduce.
func goldenCSV(t *testing.T) string {
	t.Helper()
	res, err := sweep.Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res.CSV()
}

func submit(t *testing.T, ts *httptest.Server, body []byte) statusResponse {
	t.Helper()
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func getStatus(t *testing.T, ts *httptest.Server, id string) statusResponse {
	t.Helper()
	resp, err := http.Get(ts.URL + "/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status: %d", resp.StatusCode)
	}
	var st statusResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	return st
}

func waitState(t *testing.T, ts *httptest.Server, id string, want jobState) statusResponse {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st := getStatus(t, ts, id)
		if st.State == want {
			return st
		}
		if st.State == stateFailed && want != stateFailed {
			t.Fatalf("campaign failed: %s", st.Error)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("campaign %s never reached %s", id, want)
	return statusResponse{}
}

func newTestServer(t *testing.T, dir string, sh campaign.Shard) *server {
	t.Helper()
	srv, err := newServer(dir, sh, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func fetch(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp.StatusCode, buf.String()
}

func TestSubmitStatusResults(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), campaign.FullShard)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st := submit(t, ts, testBody())
	if st.ID == "" || (st.State != statePreparing && st.State != stateRunning) {
		t.Fatalf("submit returned %+v", st)
	}
	final := waitState(t, ts, st.ID, stateDone)
	if final.TasksDone != final.TasksTotal || final.TasksTotal != 6 {
		t.Fatalf("done campaign reports %d/%d tasks", final.TasksDone, final.TasksTotal)
	}
	if len(final.Cells) != 2 {
		t.Fatalf("status lists %d cells, want 2", len(final.Cells))
	}
	for _, c := range final.Cells {
		if c.Done != 3 {
			t.Fatalf("cell %s done=%d, want 3", c.Circuit, c.Done)
		}
	}
	code, csv := fetch(t, ts.URL+"/campaigns/"+st.ID+"/results?format=csv")
	if code != http.StatusOK {
		t.Fatalf("results: status %d", code)
	}
	if csv != goldenCSV(t) {
		t.Error("daemon CSV differs from in-process run")
	}
	code, body := fetch(t, ts.URL+"/campaigns/"+st.ID+"/results?format=json")
	if code != http.StatusOK || !json.Valid([]byte(body)) {
		t.Fatalf("json results: status %d, valid=%v", code, json.Valid([]byte(body)))
	}
	// Resubmitting the same config is idempotent: same job, no rerun.
	if again := submit(t, ts, testBody()); again.ID != st.ID {
		t.Errorf("resubmit created %s, want %s", again.ID, st.ID)
	}
	// A scheduling-knob change is still the same campaign identity.
	tweaked := bytes.Replace(testBody(), []byte(`"workers": 2`), []byte(`"workers": 7`), 1)
	if again := submit(t, ts, tweaked); again.ID != st.ID {
		t.Errorf("worker-count resubmit created %s, want %s", again.ID, st.ID)
	}
}

func TestStreamTightensMonotonically(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), campaign.FullShard)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st := submit(t, ts, testBody())
	resp, err := http.Get(ts.URL + "/campaigns/" + st.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	// The stream ends when the campaign reaches a terminal state; every
	// line is one cell advance.
	lastDone := map[int]int{}
	lastCI := map[int][2]float64{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var ev cellEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad stream line %q: %v", sc.Text(), err)
		}
		if ev.Done <= lastDone[ev.Cell] {
			t.Fatalf("cell %d watermark went %d -> %d", ev.Cell, lastDone[ev.Cell], ev.Done)
		}
		lastDone[ev.Cell] = ev.Done
		if len(ev.Points) != 2 {
			t.Fatalf("cell %d event has %d points, want 2", ev.Cell, len(ev.Points))
		}
		lastCI[ev.Cell] = [2]float64{ev.Points[0].CILow, ev.Points[0].CIHigh}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(lastDone) != 2 {
		t.Fatalf("stream covered %d cells, want 2", len(lastDone))
	}
	for cell, done := range lastDone {
		if done != 3 {
			t.Fatalf("cell %d stream ended at done=%d, want 3", cell, done)
		}
	}
	// The final streamed CIs are the published report's CIs.
	res, err := sweep.Run(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	for cell, ci := range lastCI {
		pt := res.Cells[cell].Points[0]
		if ci[0] != pt.CILow || ci[1] != pt.CIHigh {
			t.Fatalf("cell %d streamed CI [%v,%v], report says [%v,%v]", cell, ci[0], ci[1], pt.CILow, pt.CIHigh)
		}
	}
}

func TestErrorPaths(t *testing.T) {
	srv := newTestServer(t, t.TempDir(), campaign.FullShard)
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	// Malformed JSON, unknown field, empty grid, bad engine name: 400.
	for name, body := range map[string]string{
		"not json":      `{"circuits": [`,
		"unknown field": `{"circuits": ["mul4"], "bogus": 1}`,
		"empty grid":    `{"circuits": ["mul4"]}`,
		"bad circuit":   `{"circuits": ["no-such-circuit"], "yields": [0.2], "n0s": [3], "lot_sizes": [60], "coverages": [0.5], "replicates": 1, "random_patterns": 32}`,
		"bad engine":    `{"circuits": ["mul4"], "yields": [0.2], "n0s": [3], "lot_sizes": [60], "coverages": [0.5], "replicates": 1, "random_patterns": 32, "engine": "warp-drive"}`,
	} {
		if code := post(body); code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, code)
		}
	}
	// Unknown campaign ID: 404 on every read endpoint.
	for _, path := range []string{"/campaigns/nope", "/campaigns/nope/results", "/campaigns/nope/stream", "/campaigns/nope/shard"} {
		if code, _ := fetch(t, ts.URL+path); code != http.StatusNotFound {
			t.Errorf("GET %s: status %d, want 404", path, code)
		}
	}
	// Unknown results format: 400.
	st := submit(t, ts, testBody())
	waitState(t, ts, st.ID, stateDone)
	if code, _ := fetch(t, ts.URL+"/campaigns/"+st.ID+"/results?format=xml"); code != http.StatusBadRequest {
		t.Errorf("bad format: status %d, want 400", code)
	}
	// /shard on a whole-campaign daemon: 409.
	if code, _ := fetch(t, ts.URL+"/campaigns/"+st.ID+"/shard"); code != http.StatusConflict {
		t.Errorf("shard on full daemon: status %d, want 409", code)
	}
}

func TestGracefulShutdownDrainsAndResumes(t *testing.T) {
	dir := t.TempDir()
	srv := newTestServer(t, dir, campaign.FullShard)
	ts := httptest.NewServer(srv)

	// Submit and immediately begin shutdown: the interrupt fires while
	// the job is still preparing circuits, so it drains before folding
	// anything — the checkpoint is written on the way out.
	st := submit(t, ts, testBody())
	srv.beginShutdown()
	got := getStatus(t, ts, st.ID)
	if got.State != stateInterrupted && got.State != stateDone {
		t.Fatalf("after shutdown: state %s", got.State)
	}
	// Submissions during/after shutdown: 503.
	resp, err := http.Post(ts.URL+"/campaigns", "application/json", bytes.NewReader(testBody()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit during shutdown: status %d, want 503", resp.StatusCode)
	}
	ts.Close()

	// The fingerprint-named checkpoint survived the shutdown.
	files, err := filepath.Glob(filepath.Join(dir, "*.ckpt"))
	if err != nil || len(files) != 1 {
		t.Fatalf("checkpoint files after shutdown: %v (err %v)", files, err)
	}
	if fi, err := os.Stat(files[0]); err != nil || fi.Size() == 0 {
		t.Fatalf("checkpoint %s: %v", files[0], err)
	}

	// A fresh daemon on the same checkpoint directory resumes the
	// campaign on resubmit and lands on the in-process bytes.
	srv2 := newTestServer(t, dir, campaign.FullShard)
	ts2 := httptest.NewServer(srv2)
	defer ts2.Close()
	st2 := submit(t, ts2, testBody())
	if !st2.Resumed && getStatus(t, ts2, st2.ID).State != stateDone {
		// Resumed is set by the runner; re-read once it has started.
		if final := waitState(t, ts2, st2.ID, stateDone); !final.Resumed {
			t.Error("resubmit after shutdown did not resume from the checkpoint")
		}
	}
	waitState(t, ts2, st2.ID, stateDone)
	code, csv := fetch(t, ts2.URL+"/campaigns/"+st2.ID+"/results")
	if code != http.StatusOK || csv != goldenCSV(t) {
		t.Errorf("resumed daemon CSV differs from in-process run (status %d)", code)
	}
}

func TestShardedDaemonsMergeToSerialBytes(t *testing.T) {
	// Three sharded daemons each compute their slice; their /shard
	// outputs merge into the serial bytes. /results and /stream on a
	// sharded daemon are 409s pointing at /shard.
	const n = 3
	var shards []*campaign.ShardResult
	var firstTS *httptest.Server
	var firstID string
	for i := 0; i < n; i++ {
		srv := newTestServer(t, t.TempDir(), campaign.Shard{Index: i, Count: n})
		ts := httptest.NewServer(srv)
		defer ts.Close()
		st := submit(t, ts, testBody())
		waitState(t, ts, st.ID, stateDone)
		if st.Shard == "" && getStatus(t, ts, st.ID).Shard != fmt.Sprintf("%d/%d", i, n) {
			t.Fatalf("shard %d: status does not report its shard", i)
		}
		code, body := fetch(t, ts.URL+"/campaigns/"+st.ID+"/shard")
		if code != http.StatusOK {
			t.Fatalf("shard %d: /shard status %d: %s", i, code, body)
		}
		var sr campaign.ShardResult
		if err := json.Unmarshal([]byte(body), &sr); err != nil {
			t.Fatal(err)
		}
		shards = append(shards, &sr)
		if i == 0 {
			firstTS, firstID = ts, st.ID
		}
	}
	for _, path := range []string{"/results", "/stream"} {
		if code, _ := fetch(t, firstTS.URL+"/campaigns/"+firstID+path); code != http.StatusConflict {
			t.Errorf("GET %s on sharded daemon: status %d, want 409", path, code)
		}
	}
	sw, err := sweep.New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	merged, err := sw.MergeShards(shards)
	if err != nil {
		t.Fatal(err)
	}
	if merged.CSV() != goldenCSV(t) {
		t.Error("merged sharded-daemon CSV differs from serial run")
	}
}
