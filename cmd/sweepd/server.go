package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/campaign"
	"repro/internal/circuits"
	"repro/internal/faultsim"
	"repro/internal/sweep"
	"repro/internal/tester"
)

// submitRequest is the wire form of a campaign config. Engine and lot
// engine travel as their flag names; scheduling knobs are accepted but
// do not enter the campaign's identity (see sweep fingerprinting).
type submitRequest struct {
	Circuits       []string  `json:"circuits"`
	Yields         []float64 `json:"yields"`
	N0s            []float64 `json:"n0s"`
	LotSizes       []int     `json:"lot_sizes"`
	Coverages      []float64 `json:"coverages"`
	Replicates     int       `json:"replicates"`
	Workers        int       `json:"workers"`
	RandomPatterns int       `json:"random_patterns"`
	Seed           int64     `json:"seed"`
	Physical       bool      `json:"physical"`
	Engine         string    `json:"engine"`
	SimWorkers     int       `json:"sim_workers"`
	LotEngine      string    `json:"lot_engine"`
	BacktrackLimit int       `json:"backtrack_limit"`
	SampleFaults   int       `json:"sample_faults"`
}

func (r submitRequest) config(cache *circuits.Cache) (sweep.Config, error) {
	cfg := sweep.Config{
		Circuits:       r.Circuits,
		Cache:          cache,
		Yields:         r.Yields,
		N0s:            r.N0s,
		LotSizes:       r.LotSizes,
		Coverages:      r.Coverages,
		Replicates:     r.Replicates,
		Workers:        r.Workers,
		RandomPatterns: r.RandomPatterns,
		Seed:           r.Seed,
		Physical:       r.Physical,
		SimWorkers:     r.SimWorkers,
		BacktrackLimit: r.BacktrackLimit,
		SampleFaults:   r.SampleFaults,
	}
	if r.Engine != "" {
		engine, err := faultsim.ParseEngine(r.Engine)
		if err != nil {
			return sweep.Config{}, err
		}
		cfg.Engine = engine
	}
	if r.LotEngine != "" {
		le, err := tester.ParseLotEngine(r.LotEngine)
		if err != nil {
			return sweep.Config{}, err
		}
		cfg.LotEngine = le
	}
	return cfg, nil
}

// jobState is a campaign's lifecycle phase as reported by GET
// /campaigns/{id}.
type jobState string

const (
	statePreparing   jobState = "preparing" // ATPG + good-machine prep
	stateRunning     jobState = "running"
	stateDone        jobState = "done"
	stateFailed      jobState = "failed"
	stateInterrupted jobState = "interrupted" // shutdown drained it; resubmit resumes
)

// cellEvent is one line of the NDJSON incremental-results stream: a
// cell's folded watermark advanced, and these are its new aggregates.
// Clients watch ci_lo/ci_hi tighten as done grows.
type cellEvent struct {
	Cell       int          `json:"cell"`
	Circuit    string       `json:"circuit"`
	Yield      float64      `json:"yield"`
	N0         float64      `json:"n0"`
	Done       int          `json:"done"`
	Replicates int          `json:"replicates"`
	Points     []pointEvent `json:"points"`
}

type pointEvent struct {
	Coverage float64 `json:"coverage"`
	Count    int     `json:"count"`
	MeanR    float64 `json:"mean_r"`
	CILow    float64 `json:"ci_lo"`
	CIHigh   float64 `json:"ci_hi"`
}

// job is one submitted campaign and its live state. The runner
// goroutine owns the sweep; everything the handlers read is mirrored
// here under mu.
type job struct {
	id          string
	fingerprint string
	cfg         sweep.Config
	resumed     bool

	interrupt chan struct{}
	intOnce   sync.Once
	finished  chan struct{} // closed on any terminal state

	mu      sync.Mutex
	state   jobState
	errMsg  string
	done    int
	total   int
	sweeper *sweep.Sweeper
	cells   []sweep.CellInfo
	snaps   []campaign.CellSnapshot
	result  *sweep.Result
	shard   *campaign.ShardResult
	subs    map[chan cellEvent]struct{}
}

func (j *job) stop() { j.intOnce.Do(func() { close(j.interrupt) }) }

// publish mirrors a cell's new snapshot and fans the event out to
// stream subscribers. Sends never block: a slow client drops events and
// catches up from the replay on reconnect.
func (j *job) publish(cell int, snap campaign.CellSnapshot) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.snaps[cell] = snap
	ev := j.eventLocked(cell)
	//repolint:ordered — fan-out to subscriber channels; delivery order between watchers is not part of any result
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
}

func (j *job) eventLocked(cell int) cellEvent {
	snap := j.snaps[cell]
	info := j.cells[cell]
	ev := cellEvent{
		Cell:       cell,
		Circuit:    info.Circuit,
		Yield:      info.Yield,
		N0:         info.N0,
		Done:       snap.Done,
		Replicates: j.cfg.Replicates,
	}
	for i, ws := range snap.Rej {
		w := campaign.FromState(ws)
		lo, hi := w.CI95()
		ev.Points = append(ev.Points, pointEvent{
			Coverage: j.cfg.Coverages[i],
			Count:    w.Count(),
			MeanR:    w.Mean(),
			CILow:    math.Max(0, lo),
			CIHigh:   math.Min(1, hi),
		})
	}
	return ev
}

// subscribe registers a stream client: the returned replay holds one
// event per cell that has any folded work (current state as of now),
// and ch receives every later advance.
func (j *job) subscribe() (replay []cellEvent, ch chan cellEvent) {
	ch = make(chan cellEvent, 64)
	j.mu.Lock()
	defer j.mu.Unlock()
	for cell := range j.snaps {
		if j.snaps[cell].Done > 0 {
			replay = append(replay, j.eventLocked(cell))
		}
	}
	j.subs[ch] = struct{}{}
	return replay, ch
}

func (j *job) unsubscribe(ch chan cellEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	delete(j.subs, ch)
}

// statusResponse is the GET /campaigns/{id} body.
type statusResponse struct {
	ID          string       `json:"id"`
	State       jobState     `json:"state"`
	Fingerprint string       `json:"fingerprint"`
	Resumed     bool         `json:"resumed"`
	Shard       string       `json:"shard,omitempty"`
	TasksDone   int          `json:"tasks_done"`
	TasksTotal  int          `json:"tasks_total"`
	Cells       []cellStatus `json:"cells,omitempty"`
	Error       string       `json:"error,omitempty"`
}

type cellStatus struct {
	Circuit string  `json:"circuit"`
	Yield   float64 `json:"yield"`
	N0      float64 `json:"n0"`
	Chips   int     `json:"chips"`
	Done    int     `json:"done"`
}

// server is the sweepd HTTP daemon: submitted campaigns run in
// background goroutines, checkpoint into ckptDir keyed by config
// fingerprint (so resubmitting a config resumes it), and publish
// incremental results as cells advance.
type server struct {
	mux     *http.ServeMux
	cache   *circuits.Cache
	ckptDir string
	shard   campaign.Shard
	// ckptEvery is the periodic checkpoint cadence in folded tasks, on
	// top of the always-on cell-completion checkpoints. Without it, a
	// crash mid-way through a long cell would lose the whole cell.
	ckptEvery int

	mu            sync.Mutex
	jobs          map[string]*job
	byFingerprint map[string]*job
	nextID        int
	stopping      bool
	wg            sync.WaitGroup
}

func newServer(ckptDir string, shard campaign.Shard, ckptEvery int, preparedDir string) (*server, error) {
	cache := circuits.NewCache()
	if preparedDir != "" {
		store, err := circuits.NewStore(preparedDir)
		if err != nil {
			return nil, err
		}
		cache = circuits.NewCacheWithStore(store)
	}
	s := &server{
		mux:           http.NewServeMux(),
		cache:         cache,
		ckptDir:       ckptDir,
		shard:         shard,
		ckptEvery:     ckptEvery,
		jobs:          map[string]*job{},
		byFingerprint: map[string]*job{},
	}
	s.mux.HandleFunc("POST /campaigns", s.handleSubmit)
	s.mux.HandleFunc("GET /campaigns", s.handleList)
	s.mux.HandleFunc("GET /campaigns/{id}", s.handleStatus)
	s.mux.HandleFunc("GET /campaigns/{id}/results", s.handleResults)
	s.mux.HandleFunc("GET /campaigns/{id}/stream", s.handleStream)
	s.mux.HandleFunc("GET /campaigns/{id}/shard", s.handleShard)
	return s, nil
}

func (s *server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// sharded reports whether this daemon computes a partial shard rather
// than whole campaigns.
func (s *server) sharded() bool { return s.shard != campaign.FullShard }

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	enc.Encode(v)
}

func (s *server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var req submitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		httpError(w, http.StatusBadRequest, "malformed config: %v", err)
		return
	}
	cfg, err := req.config(s.cache)
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if err := cfg.Validate(); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	fp, err := cfg.Fingerprint()
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	s.mu.Lock()
	if s.stopping {
		s.mu.Unlock()
		httpError(w, http.StatusServiceUnavailable, "daemon is shutting down")
		return
	}
	// Submitting a config already known to this daemon is idempotent:
	// the same job answers, whatever its state short of failure. A
	// failed or interrupted job gets a fresh runner, which resumes from
	// the fingerprint-named checkpoint.
	if j, ok := s.byFingerprint[fp]; ok {
		j.mu.Lock()
		st := j.state
		j.mu.Unlock()
		if st != stateFailed && st != stateInterrupted {
			s.mu.Unlock()
			writeJSON(w, http.StatusOK, s.status(j))
			return
		}
	}
	s.nextID++
	j := &job{
		id:          fmt.Sprintf("c%d", s.nextID),
		fingerprint: fp,
		cfg:         cfg,
		interrupt:   make(chan struct{}),
		finished:    make(chan struct{}),
		state:       statePreparing,
		subs:        map[chan cellEvent]struct{}{},
	}
	s.jobs[j.id] = j
	s.byFingerprint[fp] = j
	s.wg.Add(1)
	s.mu.Unlock()

	go s.run(j)
	writeJSON(w, http.StatusAccepted, s.status(j))
}

// run is the job's background runner: prepare circuits, then drive the
// campaign with resume-or-start durability against the daemon's
// checkpoint directory.
func (s *server) run(j *job) {
	defer s.wg.Done()
	defer close(j.finished)
	fail := func(err error) {
		j.mu.Lock()
		j.state = stateFailed
		j.errMsg = err.Error()
		j.mu.Unlock()
	}
	sw, err := sweep.New(j.cfg)
	if err != nil {
		fail(err)
		return
	}
	layout := sw.Layout()
	snaps := make([]campaign.CellSnapshot, layout.Cells)
	cuts := len(j.cfg.Coverages)
	for i := range snaps {
		snaps[i] = campaign.CellSnapshot{
			Rej:  make([]campaign.WelfordState, cuts),
			Esc:  make([]campaign.WelfordState, cuts),
			Pass: make([]campaign.WelfordState, cuts),
		}
	}
	ckpt := filepath.Join(s.ckptDir, j.fingerprint+s.checkpointSuffix())
	resumed := false
	if _, statErr := os.Stat(ckpt); statErr == nil {
		resumed = true
	}

	j.mu.Lock()
	j.resumed = resumed
	j.sweeper = sw
	j.cells = sw.Cells()
	j.snaps = snaps
	j.total = layout.Tasks()
	j.state = stateRunning
	j.mu.Unlock()

	opts := sweep.RunOptions{
		Checkpoint:      ckpt,
		Resume:          true,
		CheckpointEvery: s.ckptEvery,
		OnCellUpdate:    j.publish,
		OnProgress: func(done, total int) {
			j.mu.Lock()
			j.done, j.total = done, total
			j.mu.Unlock()
		},
		Interrupt: j.interrupt,
	}
	if s.sharded() {
		sr, err := sw.RunShard(s.shard, opts)
		switch {
		case errors.Is(err, sweep.ErrInterrupted):
			j.mu.Lock()
			j.state = stateInterrupted
			j.mu.Unlock()
		case err != nil:
			fail(err)
		default:
			j.mu.Lock()
			j.state = stateDone
			j.shard = sr
			j.mu.Unlock()
		}
		return
	}
	res, err := sw.RunWith(opts)
	switch {
	case errors.Is(err, sweep.ErrInterrupted):
		j.mu.Lock()
		j.state = stateInterrupted
		j.mu.Unlock()
	case err != nil:
		fail(err)
	default:
		j.mu.Lock()
		j.state = stateDone
		j.result = res
		j.mu.Unlock()
	}
}

func (s *server) checkpointSuffix() string {
	if s.sharded() {
		return fmt.Sprintf(".shard-%d-of-%d", s.shard.Index, s.shard.Count)
	}
	return ".ckpt"
}

// status snapshots a job for the wire. Resumed reports whether a
// fingerprint-named checkpoint predated the job's runner.
func (s *server) status(j *job) statusResponse {
	j.mu.Lock()
	defer j.mu.Unlock()
	resp := statusResponse{
		ID:          j.id,
		State:       j.state,
		Fingerprint: j.fingerprint,
		Resumed:     j.resumed,
		TasksDone:   j.done,
		TasksTotal:  j.total,
		Error:       j.errMsg,
	}
	if s.sharded() {
		resp.Shard = s.shard.String()
	}
	for i, c := range j.cells {
		resp.Cells = append(resp.Cells, cellStatus{
			Circuit: c.Circuit,
			Yield:   c.Yield,
			N0:      c.N0,
			Chips:   c.Chips,
			Done:    j.snaps[i].Done,
		})
	}
	return resp
}

func (s *server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		httpError(w, http.StatusNotFound, "no campaign %q", id)
		return nil
	}
	return j
}

func (s *server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*job, 0, len(s.jobs))
	//repolint:ordered — collection only; the response is sorted by job ID below
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := make([]statusResponse, len(jobs))
	for i, j := range jobs {
		out[i] = s.status(j)
	}
	// Stable order for humans and tests.
	for i := 0; i < len(out); i++ {
		for k := i + 1; k < len(out); k++ {
			if out[k].ID < out[i].ID {
				out[i], out[k] = out[k], out[i]
			}
		}
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, s.status(j))
	}
}

// handleResults renders the campaign report — partial while running
// (each cell at its current watermark), final when done. Sharded
// daemons have no whole-campaign results; their output is /shard.
func (s *server) handleResults(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if s.sharded() {
		httpError(w, http.StatusConflict, "sharded daemon (%s): fetch /campaigns/%s/shard and merge", s.shard, j.id)
		return
	}
	j.mu.Lock()
	res := j.result
	sw := j.sweeper
	var snaps []campaign.CellSnapshot
	if res == nil && sw != nil {
		snaps = append(snaps, j.snaps...)
	}
	st := j.state
	errMsg := j.errMsg
	j.mu.Unlock()
	if res == nil {
		if st == stateFailed {
			httpError(w, http.StatusConflict, "campaign failed: %s", errMsg)
			return
		}
		if sw == nil {
			httpError(w, http.StatusConflict, "campaign still preparing, no results yet")
			return
		}
		var err error
		res, err = sw.ResultFrom(snaps)
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "csv":
		w.Header().Set("Content-Type", "text/csv")
		fmt.Fprint(w, res.CSV())
	case "json":
		out, err := res.JSON()
		if err != nil {
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, out)
	default:
		httpError(w, http.StatusBadRequest, "unknown format %q (want csv or json)", format)
	}
}

// handleStream serves the NDJSON incremental-results stream: first a
// replay of every cell that has folded work, then one line per
// watermark advance until the campaign reaches a terminal state or the
// client goes away.
func (s *server) handleStream(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if s.sharded() {
		httpError(w, http.StatusConflict, "sharded daemon (%s) does not stream whole-campaign results", s.shard)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusInternalServerError, "streaming unsupported by this connection")
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	replay, ch := j.subscribe()
	defer j.unsubscribe(ch)
	for _, ev := range replay {
		enc.Encode(ev)
	}
	flusher.Flush()
	for {
		select {
		case ev := <-ch:
			enc.Encode(ev)
			flusher.Flush()
		case <-j.finished:
			// Drain whatever the runner published before finishing.
			for {
				select {
				case ev := <-ch:
					enc.Encode(ev)
				default:
					flusher.Flush()
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

// handleShard serves a sharded daemon's finished partial result — the
// raw per-replicate summaries cmd/sweep -merge folds with the other
// shards into the serial bytes.
func (s *server) handleShard(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(w, r)
	if j == nil {
		return
	}
	if !s.sharded() {
		httpError(w, http.StatusConflict, "not a sharded daemon: fetch /campaigns/%s/results", j.id)
		return
	}
	j.mu.Lock()
	sr := j.shard
	st := j.state
	errMsg := j.errMsg
	j.mu.Unlock()
	if sr == nil {
		if st == stateFailed {
			httpError(w, http.StatusConflict, "campaign failed: %s", errMsg)
			return
		}
		httpError(w, http.StatusConflict, "shard not finished (state %s)", st)
		return
	}
	writeJSON(w, http.StatusOK, sr)
}

// beginShutdown starts the graceful drain: new submissions get 503,
// every running job's interrupt fires (in-flight replicates finish and
// the checkpoint is written), and the call returns when all runners
// have exited. The HTTP listener is shut down by the caller afterwards.
func (s *server) beginShutdown() {
	s.mu.Lock()
	s.stopping = true
	jobs := make([]*job, 0, len(s.jobs))
	//repolint:ordered — each job checkpoints into its own directory; stop order is immaterial
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	for _, j := range jobs {
		j.stop()
	}
	s.wg.Wait()
}
