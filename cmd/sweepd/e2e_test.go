package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/sweep"
)

// TestE2ECrashResume is the sweepd smoke test (`make sweepd-smoke`):
// build the real binary, start it, submit a two-circuit campaign, kill
// the process with SIGKILL mid-run, restart it on the same checkpoint
// directory, resubmit, and require the final CSV byte-identical to an
// in-process run. Gated behind SWEEPD_E2E=1: it builds a binary and
// kills processes, which is smoke-test work, not unit-test work.
func TestE2ECrashResume(t *testing.T) {
	if os.Getenv("SWEEPD_E2E") == "" {
		t.Skip("set SWEEPD_E2E=1 to run the sweepd crash/resume smoke test")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "sweepd")
	build := exec.Command("go", "build", "-o", bin, ".")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	ckptDir := filepath.Join(dir, "ckpt")

	start := func() (*exec.Cmd, string) {
		cmd := exec.Command(bin, "-addr", "127.0.0.1:0", "-checkpoint-dir", ckptDir)
		stdout, err := cmd.StdoutPipe()
		if err != nil {
			t.Fatal(err)
		}
		cmd.Stderr = os.Stderr
		if err := cmd.Start(); err != nil {
			t.Fatal(err)
		}
		// The daemon prints "listening on <addr>" once the socket is up.
		sc := bufio.NewScanner(stdout)
		if !sc.Scan() {
			t.Fatalf("daemon exited before announcing its address: %v", sc.Err())
		}
		line := sc.Text()
		addr, ok := strings.CutPrefix(line, "listening on ")
		if !ok {
			t.Fatalf("unexpected daemon banner %q", line)
		}
		go func() {
			for sc.Scan() {
			}
		}()
		return cmd, "http://" + addr
	}

	// The campaign: big enough (2 cells x 200 replicates) that the kill
	// below lands mid-run, small enough to finish in seconds.
	body := `{
		"circuits": ["mul4", "cmp8"],
		"yields": [0.25],
		"n0s": [3],
		"lot_sizes": [60],
		"coverages": [0.3, 0.6],
		"replicates": 200,
		"workers": 2,
		"random_patterns": 32,
		"seed": 19
	}`
	submit := func(url string) statusResponse {
		resp, err := http.Post(url+"/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st statusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if st.ID == "" {
			t.Fatalf("submit returned %+v", st)
		}
		return st
	}
	status := func(url, id string) statusResponse {
		resp, err := http.Get(url + "/campaigns/" + id)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st statusResponse
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		return st
	}

	cmd, url := start()
	st := submit(url)
	// Wait for real progress so the SIGKILL lands mid-campaign, then
	// pull the plug — no drain, no final checkpoint, a true crash.
	deadline := time.Now().Add(60 * time.Second)
	for {
		if cur := status(url, st.ID); cur.TasksDone > 0 {
			t.Logf("killing daemon at %d/%d tasks", cur.TasksDone, cur.TasksTotal)
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("campaign never made progress")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()

	// Restart on the same checkpoint directory and resubmit the same
	// config: the daemon resumes from the last durable watermark.
	cmd2, url2 := start()
	defer func() {
		cmd2.Process.Kill()
		cmd2.Wait()
	}()
	st2 := submit(url2)
	deadline = time.Now().Add(120 * time.Second)
	var final statusResponse
	for {
		final = status(url2, st2.ID)
		if final.State == stateDone {
			break
		}
		if final.State == stateFailed {
			t.Fatalf("resumed campaign failed: %s", final.Error)
		}
		if time.Now().After(deadline) {
			t.Fatalf("resumed campaign stuck in %s", final.State)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !final.Resumed {
		t.Error("restarted daemon did not resume from the crash checkpoint")
	}
	resp, err := http.Get(url2 + "/campaigns/" + st2.ID + "/results?format=csv")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: status %d: %s", resp.StatusCode, buf.String())
	}

	cfg := testConfig()
	cfg.Replicates = 200
	golden, err := sweep.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if buf.String() != golden.CSV() {
		t.Error("post-crash resumed CSV differs from in-process run")
	}
	fmt.Println("sweepd crash/resume smoke: byte-identical after SIGKILL")
}
