// Command sweepd is the long-running campaign daemon: submit sweep
// campaigns over HTTP, watch their confidence intervals tighten live,
// and survive restarts — every campaign checkpoints into the daemon's
// checkpoint directory under its config fingerprint, so resubmitting a
// config after a crash or shutdown resumes it instead of starting over.
//
//	sweepd -addr :8322 -checkpoint-dir /var/lib/sweepd
//	curl -d @campaign.json localhost:8322/campaigns
//	curl localhost:8322/campaigns/c1                      # status
//	curl localhost:8322/campaigns/c1/stream               # NDJSON live CIs
//	curl localhost:8322/campaigns/c1/results?format=csv   # partial or final
//
// With -shard i/n the daemon computes only its slice of each campaign
// (task%n == i); fetch /campaigns/{id}/shard from each daemon and merge
// with sweep -merge for bytes identical to a single-process run.
//
// SIGINT/SIGTERM drain gracefully: running replicates finish, the
// checkpoints are written, then the listener closes.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/campaign"
)

func main() {
	addr := flag.String("addr", ":8322", "HTTP listen address")
	ckptDir := flag.String("checkpoint-dir", ".", "directory for campaign checkpoints (named by config fingerprint)")
	shardSpec := flag.String("shard", "", "run only shard i/n of each campaign, e.g. 1/4 (empty: whole campaigns)")
	ckptEvery := flag.Int("checkpoint-every", 20, "also checkpoint every N folded replicates (0: only at cell completions)")
	preparedDir := flag.String("prepared-dir", "",
		"on-disk Prepared store shared across campaigns and restarts (empty: in-memory only)")
	flag.Parse()

	sh := campaign.FullShard
	if *shardSpec != "" {
		var err error
		if sh, err = campaign.ParseShard(*shardSpec); err != nil {
			log.Fatalf("sweepd: %v", err)
		}
	}
	if err := os.MkdirAll(*ckptDir, 0o755); err != nil {
		log.Fatalf("sweepd: %v", err)
	}

	srv, err := newServer(*ckptDir, sh, *ckptEvery, *preparedDir)
	if err != nil {
		log.Fatalf("sweepd: %v", err)
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatalf("sweepd: %v", err)
	}
	// Printed (not logged) so scripts using -addr :0 can scrape the
	// resolved port.
	fmt.Printf("listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigs:
		log.Printf("sweepd: %v: draining jobs and checkpointing", sig)
		srv.beginShutdown()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		httpSrv.Shutdown(ctx)
		log.Printf("sweepd: shutdown complete")
	case err := <-done:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("sweepd: %v", err)
		}
	}
}
