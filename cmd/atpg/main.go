// Command atpg generates test patterns for a circuit with PODEM (plus
// an optional random burst) and reports coverage and pattern count.
//
//	atpg -circuit mul4
//	atpg -circuit dec4 -random 32 -compact
//	atpg -circuit bench:c432.bench
//	atpg -list-circuits
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/atpg"
	"repro/internal/circuits"
	"repro/internal/fault"
	"repro/internal/faultsim"
	"repro/internal/logicsim"
)

func main() {
	circuit := flag.String("circuit", "c17", "workload spec (see -list-circuits)")
	listCircuits := flag.Bool("list-circuits", false, "print the workload spec grammar and exit")
	random := flag.Int("random", 0, "random patterns applied before PODEM cleanup")
	seed := flag.Int64("seed", 1, "random seed")
	compact := flag.Bool("compact", false, "reverse-order compact the final set")
	flag.Parse()

	if *listCircuits {
		fmt.Print(circuits.List())
		return
	}
	if err := run(*circuit, *random, *seed, *compact); err != nil {
		fmt.Fprintln(os.Stderr, "atpg:", err)
		os.Exit(1)
	}
}

func run(circuit string, random int, seed int64, compact bool) error {
	c, err := circuits.Resolve(circuit)
	if err != nil {
		return err
	}
	u := fault.BuildUniverse(c)
	reps := fault.Reps(u.Collapsed)
	fmt.Printf("circuit %s: %d gates, %d collapsed faults\n", c.Name, len(c.Gates), len(reps))

	var patterns []logicsim.Pattern
	if random > 0 {
		patterns, err = atpg.HybridTests(c, random, seed)
		if err != nil {
			return err
		}
		fmt.Printf("hybrid: %d random + %d deterministic patterns\n", random, len(patterns)-random)
	} else {
		res, err := atpg.GenerateAll(c)
		if err != nil {
			return err
		}
		fmt.Printf("PODEM: %d patterns, coverage %.4f, %d untestable, %d aborted\n",
			len(res.Patterns), res.Coverage, res.Untestable, res.Aborted)
		patterns = res.Patterns
	}

	res, err := faultsim.Run(c, reps, patterns, faultsim.PPSFP)
	if err != nil {
		return err
	}
	fmt.Printf("fault-simulated coverage: %.4f with %d patterns\n", res.Coverage(), len(patterns))
	if compact {
		compacted, err := atpg.Compact(c, reps, patterns)
		if err != nil {
			return err
		}
		res2, err := faultsim.Run(c, reps, compacted, faultsim.PPSFP)
		if err != nil {
			return err
		}
		fmt.Printf("after compaction: %.4f with %d patterns\n", res2.Coverage(), len(compacted))
	}
	return nil
}
