// Command sweep runs the Monte-Carlo reject-rate validation: R
// replicate lots per grid cell of (circuit, yield, n0, lot size), each
// tested with that circuit's production program truncated at a set of
// coverage points, aggregated into mean reject rates with 95%
// confidence intervals and overlaid on the analytic Eq. 8 curve.
//
//	sweep -circuits mul8 -yields 0.07 -n0s 8,8.8 -chips 6000 -coverages 0.8,0.94 -replicates 30
//	sweep -circuits mul4,cmp8,rand7 -format csv > sweep.csv
//	sweep -circuits bench:circuits/ -format json -workers 8 -engine concurrent
//	sweep -list-circuits
//
// Campaigns are durable and shardable. -checkpoint snapshots progress
// atomically; -resume continues a killed run from its checkpoint with
// byte-identical final output. -shard i/n runs only every n-th
// replicate (writing a shard file via -checkpoint); -merge folds a
// complete set of shard files into the same bytes a serial run
// produces:
//
//	sweep -checkpoint run.ckpt -resume -format csv > sweep.csv
//	sweep -shard 0/2 -checkpoint s0.shard & sweep -shard 1/2 -checkpoint s1.shard
//	sweep -merge s0.shard,s1.shard -format csv > sweep.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/campaign"
	"repro/internal/circuits"
	"repro/internal/experiment"
	"repro/internal/faultsim"
	"repro/internal/sweep"
	"repro/internal/tester"
)

func main() {
	circuitSpecs := flag.String("circuits", experiment.DefaultCircuitSpec,
		"comma-separated workload specs spanning the circuit axis (see -list-circuits)")
	listCircuits := flag.Bool("list-circuits", false, "print the workload spec grammar and exit")
	yields := flag.String("yields", "0.07", "comma-separated ground-truth yields")
	n0s := flag.String("n0s", "8.8", "comma-separated ground-truth n0 values")
	chips := flag.String("chips", "2000", "comma-separated lot sizes")
	coverages := flag.String("coverages", "0.5,0.8,0.94", "comma-separated coverage truncation targets")
	replicates := flag.Int("replicates", 20, "independent lots per grid cell")
	workers := flag.Int("workers", 0, "replicate worker pool size (0 = GOMAXPROCS)")
	seed := flag.Int64("seed", 1981, "base seed; per-replicate seeds are derived deterministically")
	random := flag.Int("random", 192, "random patterns before PODEM cleanup")
	physical := flag.Bool("physical", false, "generate lots through the physical-defect layer")
	engineName := flag.String("engine", "ppsfp", "fault-simulation engine: serial, ppsfp, deductive, pf, concurrent, pf256")
	simWorkers := flag.Int("simworkers", 0, "goroutines for -engine concurrent (0 = GOMAXPROCS)")
	lotEngineName := flag.String("lotengine", tester.ChipParallel.String(),
		"ATE lot engine: chip-parallel, chipparallel256, or serial (bit-identical results)")
	sampleFaults := flag.Int("sample-faults", 0,
		"prepare each circuit against a deterministic random sample of at most N collapsed fault classes (0 = full universe)")
	backtrackLimit := flag.Int("backtrack-limit", 0,
		"PODEM backtrack budget per fault during cleanup ATPG (0 = generator default)")
	preparedDir := flag.String("prepared-dir", "",
		"on-disk Prepared store: reuse test programs and coverage ramps across processes (byte-identical results)")
	format := flag.String("format", "table", "output format: table, csv, json")
	plot := flag.Bool("plot", true, "append the reject-rate overlay plot (table format only)")
	checkpoint := flag.String("checkpoint", "", "checkpoint file: campaign snapshots are written here atomically (shard output file with -shard)")
	resume := flag.Bool("resume", false, "resume from -checkpoint if it exists (a missing file is a fresh start)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "also checkpoint every N folded replicates (0: only at cell completions)")
	shardSpec := flag.String("shard", "", "run only shard i/n of the campaign, e.g. 0/4; requires -checkpoint, output is a shard file")
	mergeList := flag.String("merge", "", "comma-separated shard files to merge instead of running (all shards of one campaign)")
	flag.Parse()

	if *listCircuits {
		fmt.Print(circuits.List())
		return
	}
	job := jobFlags{
		checkpoint:      *checkpoint,
		resume:          *resume,
		checkpointEvery: *checkpointEvery,
		shard:           *shardSpec,
		merge:           *mergeList,
	}
	prep := prepFlags{
		sampleFaults:   *sampleFaults,
		backtrackLimit: *backtrackLimit,
		preparedDir:    *preparedDir,
	}
	if err := run(*circuitSpecs, *yields, *n0s, *chips, *coverages, *replicates, *workers, *seed,
		*random, *physical, *engineName, *simWorkers, *lotEngineName, *format, *plot, job, prep); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// jobFlags are the durability and distribution flags: checkpoint/resume
// for crash recovery, shard/merge for multi-process campaigns.
type jobFlags struct {
	checkpoint      string
	resume          bool
	checkpointEvery int
	shard           string
	merge           string
}

// prepFlags are the ISCAS-scale preparation knobs: fault sampling, the
// ATPG backtrack budget, and the on-disk Prepared store.
type prepFlags struct {
	sampleFaults   int
	backtrackLimit int
	preparedDir    string
}

func run(circuitSpecs, yields, n0s, chips, coverages string, replicates, workers int, seed int64,
	random int, physical bool, engineName string, simWorkers int, lotEngineName, format string, plot bool,
	job jobFlags, prep prepFlags) error {
	specs := splitList(circuitSpecs)
	if len(specs) == 0 {
		return fmt.Errorf("-circuits: need at least one workload spec")
	}
	ys, err := parseFloats(yields)
	if err != nil {
		return fmt.Errorf("-yields: %w", err)
	}
	ns, err := parseFloats(n0s)
	if err != nil {
		return fmt.Errorf("-n0s: %w", err)
	}
	lots, err := parseInts(chips)
	if err != nil {
		return fmt.Errorf("-chips: %w", err)
	}
	covs, err := parseFloats(coverages)
	if err != nil {
		return fmt.Errorf("-coverages: %w", err)
	}
	engine, err := faultsim.ParseEngine(engineName)
	if err != nil {
		return err
	}
	lotEngine, err := tester.ParseLotEngine(lotEngineName)
	if err != nil {
		return err
	}
	switch format {
	case "table", "csv", "json":
	default:
		return fmt.Errorf("unknown format %q (want table, csv, or json)", format)
	}
	cfg := sweep.Config{
		Circuits:       specs,
		Yields:         ys,
		N0s:            ns,
		LotSizes:       lots,
		Coverages:      covs,
		Replicates:     replicates,
		Workers:        workers,
		RandomPatterns: random,
		Seed:           seed,
		Physical:       physical,
		Engine:         engine,
		SimWorkers:     simWorkers,
		LotEngine:      lotEngine,
		SampleFaults:   prep.sampleFaults,
		BacktrackLimit: prep.backtrackLimit,
		PreparedDir:    prep.preparedDir,
	}
	// Fail fast on nonsense grids or unknown specs before any ATPG.
	if err := cfg.Validate(); err != nil {
		return err
	}
	res, err := execute(cfg, job)
	if err != nil || res == nil {
		return err
	}
	switch format {
	case "csv":
		fmt.Print(res.CSV())
	case "json":
		out, err := res.JSON()
		if err != nil {
			return err
		}
		fmt.Print(out)
	default:
		fmt.Println(res.Table())
		if plot {
			fmt.Println(res.Plot())
		}
	}
	return nil
}

// execute runs the campaign through the job engine: plain run,
// checkpointed run, one shard of a partition, or a merge of finished
// shard files — all producing the same bytes for the same config.
func execute(cfg sweep.Config, job jobFlags) (*sweep.Result, error) {
	if job.merge != "" && job.shard != "" {
		return nil, fmt.Errorf("-merge and -shard are mutually exclusive")
	}
	if job.merge != "" {
		paths := splitList(job.merge)
		shards := make([]*campaign.ShardResult, len(paths))
		for i, p := range paths {
			sr, err := campaign.LoadShard(p)
			if err != nil {
				return nil, err
			}
			shards[i] = sr
		}
		sw, err := sweep.New(cfg)
		if err != nil {
			return nil, err
		}
		return sw.MergeShards(shards)
	}
	opts := sweep.RunOptions{
		Checkpoint:      job.checkpoint,
		Resume:          job.resume,
		CheckpointEvery: job.checkpointEvery,
	}
	if job.shard != "" {
		if job.checkpoint == "" {
			return nil, fmt.Errorf("-shard requires -checkpoint (the shard output file)")
		}
		sh, err := campaign.ParseShard(job.shard)
		if err != nil {
			return nil, err
		}
		sw, err := sweep.New(cfg)
		if err != nil {
			return nil, err
		}
		sr, err := sw.RunShard(sh, opts)
		if err != nil {
			return nil, err
		}
		// The shard file IS the output; there is nothing to render
		// until -merge folds the full set.
		fmt.Fprintf(os.Stderr, "sweep: shard %s complete: %d replicate summaries in %s (merge with -merge)\n",
			sh, len(sr.Summaries), job.checkpoint)
		return nil, nil
	}
	sw, err := sweep.New(cfg)
	if err != nil {
		return nil, err
	}
	return sw.RunWith(opts)
}

// splitList splits a comma-separated list, dropping empty parts.
func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// parseFloats parses a comma-separated float list.
func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range splitList(s) {
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}

// parseInts parses a comma-separated integer list.
func parseInts(s string) ([]int, error) {
	var out []int
	for _, part := range splitList(s) {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", part)
		}
		out = append(out, v)
	}
	return out, nil
}
