// Command lotsim runs the paper's full production-lot experiment
// (§5/§7) end to end on a synthetic line: generate circuit and ordered
// tests, manufacture a lot at a target (yield, n0), first-fail test
// each chip, print the Table 1 fallout table and Fig. 5 overlay, and
// recover n0 by curve fit and slope.
//
//	lotsim -chips 277 -yield 0.07 -n0 8.8
//	lotsim -circuit cmp16              # any registry workload spec
//	lotsim -physical                   # route through the physical-defect layer
//	lotsim -list-circuits
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/circuits"
	"repro/internal/experiment"
	"repro/internal/tester"
)

func main() {
	chips := flag.Int("chips", 277, "lot size")
	yield := flag.Float64("yield", 0.07, "ground-truth yield")
	n0 := flag.Float64("n0", 8.8, "ground-truth mean faults per defective chip")
	seed := flag.Int64("seed", 1981, "random seed")
	random := flag.Int("random", 192, "random patterns before PODEM cleanup")
	circuit := flag.String("circuit", experiment.DefaultCircuitSpec,
		"workload spec of the DUT (see -list-circuits)")
	listCircuits := flag.Bool("list-circuits", false, "print the workload spec grammar and exit")
	physical := flag.Bool("physical", false, "generate the lot through the physical-defect layer")
	lotEngineName := flag.String("lotengine", tester.ChipParallel.String(),
		"ATE lot engine: chip-parallel (63 chips + good machine per word), chipparallel256 (255 chips per 4-word lane block), or serial (per-chip oracle)")
	sampleFaults := flag.Int("sample-faults", 0,
		"prepare against a deterministic random sample of at most N collapsed fault classes (0 = full universe)")
	backtrackLimit := flag.Int("backtrack-limit", 0,
		"PODEM backtrack budget per fault during cleanup ATPG (0 = generator default)")
	preparedDir := flag.String("prepared-dir", "",
		"on-disk Prepared store: reuse the test program and coverage ramp across runs")
	flag.Parse()

	if *listCircuits {
		fmt.Print(circuits.List())
		return
	}
	lotEngine, err := tester.ParseLotEngine(*lotEngineName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lotsim:", err)
		os.Exit(1)
	}
	cfg := experiment.Table1Config{
		Chips:          *chips,
		Yield:          *yield,
		N0:             *n0,
		RandomPatterns: *random,
		Seed:           *seed,
		Physical:       *physical,
		LotEngine:      lotEngine,
		BacktrackLimit: *backtrackLimit,
		SampleFaults:   *sampleFaults,
	}
	// Fail fast on nonsense parameters before resolving the circuit or
	// running any ATPG.
	if err := cfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "lotsim:", err)
		os.Exit(1)
	}
	// Preparation goes through a cache so -prepared-dir can satisfy it
	// from disk: a warm store skips ATPG and fault simulation entirely.
	cache := circuits.NewCache()
	if *preparedDir != "" {
		store, err := circuits.NewStore(*preparedDir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lotsim:", err)
			os.Exit(1)
		}
		cache = circuits.NewCacheWithStore(store)
	}
	prep, err := cache.Get(*circuit, cfg.PrepareParams())
	if err != nil {
		fmt.Fprintln(os.Stderr, "lotsim:", err)
		os.Exit(1)
	}
	cfg.Circuit = prep.Circuit
	res, err := experiment.RunTable1From(prep, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lotsim:", err)
		os.Exit(1)
	}
	fmt.Println(res.Render())
}
